// Package xrand provides a small, fast, deterministic pseudo-random
// number generator (xoshiro256**, seeded through splitmix64) plus the
// distribution draws the simulator needs: uniform integers,
// floating-point uniforms, exponential interarrival times, and
// weighted choices. Determinism under a fixed seed is required so that
// simulation experiments are exactly reproducible.
package xrand

import "math"

// Source is a xoshiro256** generator. The zero value is invalid;
// construct with New.
type Source struct {
	s [4]uint64
}

// splitmix64 advances a splitmix64 state and returns the next output.
// It is used only to expand a seed into the xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give
// independent-looking streams; equal seeds give identical streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// A state of all zeros is the single invalid xoshiro state; the
	// splitmix expansion cannot produce it, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

// Split derives a new independent Source from the current one. It is
// used to give every traffic generator and arbiter its own stream so
// adding a consumer does not perturb the draws seen by others.
func (src *Source) Split() *Source {
	return New(src.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (src *Source) Uint64() uint64 {
	s := &src.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method keeps the draw unbiased.
func (src *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	bound := uint64(n)
	//simvet:bounded — rejection probability < 2^-32 per draw, so the loop all but always exits on the first iteration
	for {
		v := src.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
func (src *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + src.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (src *Source) Float64() float64 {
	return float64(src.Uint64()>>11) * (1.0 / (1 << 53))
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (src *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("xrand: Exp with mean <= 0")
	}
	for {
		u := src.Float64()
		if u > 0 {
			return -mean * math.Log(u)
		}
	}
}

// Bool returns a fair random boolean.
func (src *Source) Bool() bool { return src.Uint64()&1 == 1 }

// Perm fills a permutation of [0, n) into dst (reusing its backing
// storage when cap allows) using Fisher-Yates, and returns it.
func (src *Source) Perm(dst []int, n int) []int {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		j := src.Intn(i + 1)
		dst = append(dst, 0)
		dst[i] = dst[j]
		dst[j] = i
	}
	return dst
}

// WeightedChoice returns an index i with probability weights[i] /
// sum(weights). Weights must be non-negative with a positive sum.
func (src *Source) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("xrand: WeightedChoice with non-positive total weight")
	}
	x := src.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
