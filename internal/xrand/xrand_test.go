package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical draws of 1000", same)
	}
}

func TestIntnRange(t *testing.T) {
	src := New(1)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 2000; i++ {
			v := src.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	src := New(7)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[src.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want about %.0f", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	src := New(2)
	for i := 0; i < 5000; i++ {
		v := src.IntRange(8, 1024)
		if v < 8 || v > 1024 {
			t.Fatalf("IntRange(8, 1024) = %d", v)
		}
	}
	if got := src.IntRange(5, 5); got != 5 {
		t.Errorf("IntRange(5,5) = %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := src.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	src := New(4)
	const mean, draws = 50.0, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := src.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := sum / draws
	if math.Abs(got-mean)/mean > 0.02 {
		t.Errorf("Exp mean = %v, want about %v", got, mean)
	}
}

func TestPerm(t *testing.T) {
	src := New(5)
	var buf []int
	for _, n := range []int{0, 1, 2, 10, 100} {
		buf = src.Perm(buf, n)
		if len(buf) != n {
			t.Fatalf("Perm length %d, want %d", len(buf), n)
		}
		seen := make([]bool, n)
		for _, v := range buf {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, buf)
			}
			seen[v] = true
		}
	}
}

func TestPermFairness(t *testing.T) {
	// Each element should appear in each position about equally often.
	src := New(6)
	const n, rounds = 4, 40000
	counts := [n][n]int{}
	var buf []int
	for r := 0; r < rounds; r++ {
		buf = src.Perm(buf, n)
		for pos, v := range buf {
			counts[pos][v]++
		}
	}
	want := float64(rounds) / n
	for pos := 0; pos < n; pos++ {
		for v := 0; v < n; v++ {
			if math.Abs(float64(counts[pos][v])-want) > 6*math.Sqrt(want) {
				t.Errorf("position %d value %d: %d, want about %.0f", pos, v, counts[pos][v], want)
			}
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	src := New(8)
	weights := []float64{1, 3, 0, 4}
	const draws = 80000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[src.WeightedChoice(weights)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[2])
	}
	for i, w := range weights {
		want := float64(draws) * w / 8
		if w > 0 && math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want about %.0f", i, counts[i], want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(9)
	b := a.Split()
	// The split stream should not equal the parent's continuation.
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split stream matches parent %d/1000 times", same)
	}
}

func TestPanics(t *testing.T) {
	src := New(10)
	for name, f := range map[string]func(){
		"Intn(0)":       func() { src.Intn(0) },
		"IntRange bad":  func() { src.IntRange(2, 1) },
		"Exp(0)":        func() { src.Exp(0) },
		"neg weight":    func() { src.WeightedChoice([]float64{-1, 2}) },
		"empty weights": func() { src.WeightedChoice(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBoolBalance(t *testing.T) {
	src := New(11)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if src.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)-draws/2) > 5*math.Sqrt(draws/4) {
		t.Errorf("Bool: %d trues of %d", trues, draws)
	}
}
