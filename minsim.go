// Package minsim is a flit-level simulator and analysis toolkit for
// switch-based wormhole multistage interconnection networks (MINs),
// reproducing Ni, Gui and Moore, "Performance Evaluation of
// Switch-Based Wormhole Networks" (ICPP 1995 / IEEE TPDS 9(5), 1997).
//
// It models the paper's four network families built from k x k
// switches — traditional MINs (TMIN), dilated MINs (DMIN), MINs with
// virtual channels (VMIN) and bidirectional butterfly MINs (BMIN,
// i.e. fat trees with turnaround routing) — under the paper's traffic
// patterns (uniform, hot spot, perfect k-shuffle and butterfly
// permutations, with global or clustered scopes and per-cluster load
// ratios), and measures average communication latency and normalized
// sustainable throughput.
//
// This package is the high-level facade. Typical use:
//
//	net, _ := minsim.NewNetwork(minsim.NetworkConfig{Kind: minsim.DMIN})
//	res, _ := minsim.Run(minsim.RunConfig{
//		Network:  net,
//		Workload: minsim.Workload{Pattern: minsim.Uniform},
//		Load:     0.4,
//	})
//	fmt.Println(res.MeanLatencyCycles, res.Throughput)
//
// The building blocks live in internal packages: topology (network
// graphs), routing (destination-tag and turnaround routing), engine
// (the wormhole simulator), traffic (workloads), partition
// (Section 4's partitionability theory), fattree (the Section 3.3
// equivalence) and experiments (the Figs. 16-20 harness).
package minsim

import (
	"fmt"

	"minsim/internal/engine"
	"minsim/internal/kary"
	"minsim/internal/metrics"
	"minsim/internal/routing"
	"minsim/internal/sweep"
	"minsim/internal/topology"
	"minsim/internal/traffic"
)

// Kind selects a network family.
type Kind int

// The four network families of the paper.
const (
	TMIN Kind = iota // traditional unidirectional MIN
	DMIN             // dilated MIN (default dilation 2)
	VMIN             // virtual-channel MIN (default 2 VCs)
	BMIN             // bidirectional butterfly MIN / fat tree
)

// Wiring selects the interstage pattern of unidirectional networks.
type Wiring int

// Supported wirings. BMINs always use butterfly wiring. Omega and
// Baseline are the equivalent Delta wirings discussed in the paper's
// conclusion (Omega partitions like Cube; Baseline like Butterfly).
const (
	Cube Wiring = iota
	Butterfly
	Omega
	Baseline
)

// NetworkConfig describes a network. The zero value, with a Kind,
// yields the paper's standard 64-node network of 4x4 switches.
type NetworkConfig struct {
	Kind     Kind
	Wiring   Wiring // unidirectional kinds only; default Cube
	K        int    // switch arity (default 4); must be a power of two
	Stages   int    // number of stages (default 3); N = K^Stages nodes
	Dilation int    // DMIN channels per port (default 2)
	VCs      int    // VMIN virtual channels per link (default 2); optional for BMIN (default 1)
	Extra    int    // extra distribution stages for unidirectional kinds (default 0)
}

// Network is an immutable network instance; safe to share across
// concurrent simulations.
type Network struct {
	topo   *topology.Network
	router routing.Router
}

// NewNetwork builds a network.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.Stages == 0 {
		cfg.Stages = 3
	}
	var (
		topo *topology.Network
		err  error
	)
	switch cfg.Kind {
	case BMIN:
		vcs := cfg.VCs
		if vcs == 0 {
			vcs = 1
		}
		topo, err = topology.NewBMINVC(cfg.K, cfg.Stages, vcs)
	case TMIN, DMIN, VMIN:
		uc := topology.UniConfig{K: cfg.K, Stages: cfg.Stages, Pattern: topology.Pattern(cfg.Wiring), Dilation: 1, VCs: 1, Extra: cfg.Extra}
		if cfg.Kind == DMIN {
			uc.Dilation = cfg.Dilation
			if uc.Dilation == 0 {
				uc.Dilation = 2
			}
		}
		if cfg.Kind == VMIN {
			uc.VCs = cfg.VCs
			if uc.VCs == 0 {
				uc.VCs = 2
			}
		}
		topo, err = topology.NewUnidirectional(uc)
	default:
		return nil, fmt.Errorf("minsim: unknown network kind %d", int(cfg.Kind))
	}
	if err != nil {
		return nil, err
	}
	return &Network{topo: topo, router: routing.New(topo)}, nil
}

// Nodes returns the number of processor nodes.
func (n *Network) Nodes() int { return n.topo.Nodes }

// Name returns a human-readable description.
func (n *Network) Name() string { return n.topo.Name() }

// Channels returns the total virtual-channel count, the paper's
// hardware-complexity proxy.
func (n *Network) Channels() int { return n.topo.ChannelCount() }

// Topology exposes the underlying graph for advanced use (analysis
// tools, custom engines).
func (n *Network) Topology() *topology.Network { return n.topo }

// Pattern selects a traffic pattern.
type Pattern int

// The paper's four traffic patterns.
const (
	Uniform       Pattern = iota
	HotSpot               // x% nonuniform; set Workload.HotX
	ShufflePerm           // perfect k-shuffle permutation
	ButterflyPerm         // i-th butterfly permutation; set Workload.ButterflyI
)

// Arrival selects the process modulating when a node injects. The
// mean rate always equals the configured load; the processes differ
// only in how the arrivals clump.
type Arrival int

// Arrival processes.
const (
	Poisson Arrival = iota // the paper's exponential inter-arrival gaps
	MMPP                   // two-state Markov-modulated Poisson bursts; set Burst/DwellHi/DwellLo
	OnOff                  // strict silence/burst alternation; set DwellHi (on) / DwellLo (off)
)

// Scope selects how nodes are clustered for traffic locality.
type Scope int

// Clustering scopes from Section 5.1.
const (
	Global        Scope = iota // one cluster of all nodes
	Cluster16                  // k clusters fixing the top address digit
	ClusterShared              // k clusters fixing the bottom digit (butterfly channel-shared)
	Cluster32                  // two halves (binary cube)
)

// Workload describes traffic. The zero value is global uniform
// traffic with the paper's message lengths, U{8..1024} flits.
type Workload struct {
	Pattern    Pattern
	Scope      Scope
	HotX       float64   // HotSpot extra fraction (e.g. 0.05)
	ButterflyI int       // ButterflyPerm index (e.g. 2)
	Ratios     []float64 // per-cluster load ratios (nil = equal)
	MinLen     int       // message length range (default 8..1024)
	MaxLen     int

	Arrival Arrival // arrival process (default Poisson)
	Burst   float64 // MMPP hi/lo rate ratio (default 8)
	DwellHi float64 // mean burst/on dwell, cycles (default 500)
	DwellLo float64 // mean quiet/off dwell, cycles (default 2000)
}

func (w Workload) arrival() (traffic.ArrivalProcess, error) {
	burst, hi, lo := w.Burst, w.DwellHi, w.DwellLo
	if burst == 0 {
		burst = 8
	}
	if hi == 0 {
		hi = 500
	}
	if lo == 0 {
		lo = 2000
	}
	switch w.Arrival {
	case Poisson:
		return traffic.Exponential{}, nil
	case MMPP:
		return traffic.MMPP2{Burst: burst, DwellHi: hi, DwellLo: lo}, nil
	case OnOff:
		return traffic.OnOff{DwellOn: hi, DwellOff: lo}, nil
	default:
		return nil, fmt.Errorf("minsim: unknown arrival process %d", int(w.Arrival))
	}
}

func (w Workload) lengths() traffic.LengthDist {
	if w.MinLen == 0 && w.MaxLen == 0 {
		return traffic.PaperLengths
	}
	min, max := w.MinLen, w.MaxLen
	if min == 0 {
		min = 1
	}
	if max < min {
		max = min
	}
	return traffic.UniformLen{Min: min, Max: max}
}

func (w Workload) clustering(r kary.Radix) traffic.Clustering {
	switch w.Scope {
	case Cluster16:
		return traffic.Cluster16(r)
	case ClusterShared:
		return traffic.Cluster16Shared(r)
	case Cluster32:
		return traffic.Halves(r.Size())
	default:
		return traffic.Global(r.Size())
	}
}

// source builds the engine traffic source for a load.
func (w Workload) source(topo *topology.Network, load float64, seed uint64) (engine.Source, error) {
	c := w.clustering(topo.R)
	var pat traffic.Pattern
	switch w.Pattern {
	case Uniform:
		pat = traffic.Uniform{C: c}
	case HotSpot:
		pat = traffic.HotSpot{C: c, X: w.HotX}
	case ShufflePerm:
		pat = traffic.ShufflePattern(topo.R)
	case ButterflyPerm:
		pat = traffic.ButterflyPattern(topo.R, w.ButterflyI)
	default:
		return nil, fmt.Errorf("minsim: unknown pattern %d", int(w.Pattern))
	}
	lengths := w.lengths()
	rates, err := traffic.NodeRates(c, load, lengths.Mean(), w.Ratios)
	if err != nil {
		return nil, err
	}
	arr, err := w.arrival()
	if err != nil {
		return nil, err
	}
	return traffic.NewWorkload(traffic.Config{
		Nodes:   topo.Nodes,
		Pattern: pat,
		Lengths: lengths,
		Rates:   rates,
		Seed:    seed,
		Arrival: arr,
	})
}

// RunConfig parameterizes a single simulation.
type RunConfig struct {
	Network  *Network
	Workload Workload
	Load     float64 // offered load, flits/node/cycle

	WarmupCycles  int64 // default 20,000
	MeasureCycles int64 // default 60,000
	Seed          uint64
	QueueLimit    int // sustainability watermark (default 100)
	// BufferDepth sets the per-channel flit buffer capacity
	// (default: the paper's single-flit buffers).
	BufferDepth int
	// FailedChannels marks channels as permanently faulty; see
	// Network.CriticalChannelCount and the engine documentation.
	FailedChannels []int
}

// Result summarizes one simulation.
type Result struct {
	Offered float64
	// OfferedMeasured is the load the sources actually generated in
	// the measurement window — below Offered for permutation patterns
	// with fixed points or silent clusters.
	OfferedMeasured   float64
	Throughput        float64 // delivered flits/node/cycle
	MeanLatencyCycles float64
	MeanLatencyMs     float64 // at the paper's 20 flits/ms channels
	LatencyStdDev     float64
	MessagesMeasured  int64
	MaxSourceQueue    int
	Sustainable       bool
}

// Run executes one simulation point.
func Run(cfg RunConfig) (Result, error) {
	if cfg.Network == nil {
		return Result{}, fmt.Errorf("minsim: nil network")
	}
	if cfg.WarmupCycles == 0 {
		cfg.WarmupCycles = 20_000
	}
	if cfg.MeasureCycles == 0 {
		cfg.MeasureCycles = 60_000
	}
	src, err := cfg.Workload.source(cfg.Network.topo, cfg.Load, cfg.Seed^0x5bf03635)
	if err != nil {
		return Result{}, err
	}
	e, err := engine.New(engine.Config{
		Net:            cfg.Network.topo,
		Router:         cfg.Network.router,
		Source:         src,
		Seed:           cfg.Seed,
		QueueLimit:     cfg.QueueLimit,
		BufferDepth:    cfg.BufferDepth,
		FailedChannels: cfg.FailedChannels,
	})
	if err != nil {
		return Result{}, err
	}
	e.SetMeasureFrom(cfg.WarmupCycles)
	e.Run(cfg.WarmupCycles + cfg.MeasureCycles)
	st := e.Stats()
	p := metrics.FromStats(cfg.Load, cfg.Network.topo.Nodes, st)
	return Result{
		Offered:           p.Offered,
		OfferedMeasured:   p.OfferedMeasured,
		Throughput:        p.Throughput,
		MeanLatencyCycles: p.LatencyCyc,
		MeanLatencyMs:     p.LatencyMs,
		LatencyStdDev:     p.StdDev,
		MessagesMeasured:  p.Messages,
		MaxSourceQueue:    st.MaxQueue,
		Sustainable:       p.Sustainable,
	}, nil
}

// SweepConfig parameterizes a load sweep.
type SweepConfig struct {
	Network  *Network
	Workload Workload
	Loads    []float64

	WarmupCycles  int64
	MeasureCycles int64
	Seed          uint64
	QueueLimit    int
	Parallelism   int
}

// Sweep runs one simulation per load in parallel and returns the
// latency/throughput points in load order.
func Sweep(cfg SweepConfig) ([]Result, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("minsim: nil network")
	}
	if cfg.WarmupCycles == 0 {
		cfg.WarmupCycles = 20_000
	}
	if cfg.MeasureCycles == 0 {
		cfg.MeasureCycles = 60_000
	}
	pts, err := sweep.Run(sweep.Config{
		Net: cfg.Network.topo,
		Factory: func(load float64, seed uint64) (engine.Source, error) {
			return cfg.Workload.source(cfg.Network.topo, load, seed)
		},
		Loads:         cfg.Loads,
		WarmupCycles:  cfg.WarmupCycles,
		MeasureCycles: cfg.MeasureCycles,
		Seed:          cfg.Seed,
		QueueLimit:    cfg.QueueLimit,
		Parallelism:   cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(pts))
	for i, p := range pts {
		out[i] = Result{
			Offered:           p.Offered,
			OfferedMeasured:   p.OfferedMeasured,
			Throughput:        p.Throughput,
			MeanLatencyCycles: p.LatencyCyc,
			MeanLatencyMs:     p.LatencyMs,
			LatencyStdDev:     p.StdDev,
			MessagesMeasured:  p.Messages,
			Sustainable:       p.Sustainable,
		}
	}
	return out, nil
}
