package minsim

import (
	"math"
	"strings"
	"testing"
)

func TestNewNetworkDefaults(t *testing.T) {
	cases := []struct {
		cfg      NetworkConfig
		nodes    int
		channels int
		name     string
	}{
		{NetworkConfig{Kind: TMIN}, 64, 256, "TMIN(cube) 64 nodes 4x4"},
		{NetworkConfig{Kind: DMIN}, 64, 384, "DMIN(cube,d=2) 64 nodes 4x4"},
		{NetworkConfig{Kind: VMIN}, 64, 384, "VMIN(cube,vc=2) 64 nodes 4x4"},
		{NetworkConfig{Kind: BMIN}, 64, 384, "BMIN 64 nodes 4x4"},
	}
	for _, c := range cases {
		net, err := NewNetwork(c.cfg)
		if err != nil {
			t.Fatalf("%+v: %v", c.cfg, err)
		}
		if net.Nodes() != c.nodes {
			t.Errorf("%s: %d nodes, want %d", net.Name(), net.Nodes(), c.nodes)
		}
		if net.Channels() != c.channels {
			t.Errorf("%s: %d channels, want %d", net.Name(), net.Channels(), c.channels)
		}
		if net.Name() != c.name {
			t.Errorf("name %q, want %q", net.Name(), c.name)
		}
	}
}

func TestNewNetworkErrors(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{Kind: Kind(99)}); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := NewNetwork(NetworkConfig{Kind: TMIN, K: 3}); err == nil {
		t.Error("non-power-of-two k accepted")
	}
}

func TestRunLowLoad(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Kind: TMIN})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Network:       net,
		Workload:      Workload{Pattern: Uniform, MinLen: 16, MaxLen: 64},
		Load:          0.1,
		WarmupCycles:  2000,
		MeasureCycles: 10000,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesMeasured == 0 {
		t.Fatal("no messages measured")
	}
	if math.Abs(res.Throughput-0.1) > 0.03 {
		t.Errorf("throughput %v at offered 0.1", res.Throughput)
	}
	if !res.Sustainable {
		t.Error("low load should be sustainable")
	}
	if res.MeanLatencyCycles <= 0 || res.MeanLatencyMs != res.MeanLatencyCycles/20 {
		t.Errorf("latency fields inconsistent: %v cycles, %v ms", res.MeanLatencyCycles, res.MeanLatencyMs)
	}
}

// TestRunBurstyArrival: the facade's arrival axis reaches the engine —
// same mean load, but the modulated processes produce a different
// (deterministic) message stream than Poisson.
func TestRunBurstyArrival(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Kind: TMIN})
	if err != nil {
		t.Fatal(err)
	}
	run := func(a Arrival) Result {
		res, err := Run(RunConfig{
			Network:       net,
			Workload:      Workload{Pattern: Uniform, MinLen: 16, MaxLen: 64, Arrival: a},
			Load:          0.1,
			WarmupCycles:  2000,
			MeasureCycles: 10000,
			Seed:          1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.MessagesMeasured == 0 {
			t.Fatalf("arrival %d measured nothing", a)
		}
		return res
	}
	poisson, mmpp, onoff := run(Poisson), run(MMPP), run(OnOff)
	if mmpp == poisson || onoff == poisson {
		t.Error("bursty arrivals reproduced the Poisson result exactly; the axis is not reaching the engine")
	}
	if again := run(MMPP); again != mmpp {
		t.Error("MMPP run not deterministic")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("nil network accepted")
	}
	net, _ := NewNetwork(NetworkConfig{Kind: TMIN})
	if _, err := Run(RunConfig{Network: net, Workload: Workload{Pattern: Pattern(42)}, Load: 0.1}); err == nil {
		t.Error("bad pattern accepted")
	}
	if _, err := Run(RunConfig{Network: net, Workload: Workload{Arrival: Arrival(42)}, Load: 0.1, WarmupCycles: 1, MeasureCycles: 1}); err == nil {
		t.Error("bad arrival process accepted")
	}
	if _, err := Run(RunConfig{Network: net, Load: -1, WarmupCycles: 1, MeasureCycles: 1}); err == nil {
		t.Error("negative load accepted")
	}
}

func TestSweepOrdering(t *testing.T) {
	// A coarse end-to-end shape check: DMIN sustains more load than
	// TMIN under global uniform traffic.
	loads := []float64{0.2, 0.5}
	sat := map[Kind]float64{}
	for _, kind := range []Kind{TMIN, DMIN} {
		net, err := NewNetwork(NetworkConfig{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Sweep(SweepConfig{
			Network:       net,
			Workload:      Workload{Pattern: Uniform},
			Loads:         loads,
			WarmupCycles:  5000,
			MeasureCycles: 20000,
			Seed:          2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(loads) {
			t.Fatalf("%d results", len(res))
		}
		sat[kind] = res[1].Throughput
	}
	if sat[DMIN] <= sat[TMIN] {
		t.Errorf("DMIN throughput %v should exceed TMIN %v at load 0.5", sat[DMIN], sat[TMIN])
	}
}

func TestSweepNilNetwork(t *testing.T) {
	if _, err := Sweep(SweepConfig{Loads: []float64{0.1}}); err == nil {
		t.Error("nil network accepted")
	}
}

func TestPathCountAndLength(t *testing.T) {
	bmin, _ := NewNetwork(NetworkConfig{Kind: BMIN})
	// Theorem 1: FirstDifference(0, 63) = 2 -> 16 paths, length 6.
	if n, err := bmin.PathCount(0, 63); err != nil || n != 16 {
		t.Errorf("PathCount(0,63) = %d, %v; want 16", n, err)
	}
	if l, err := bmin.PathLength(0, 63); err != nil || l != 6 {
		t.Errorf("PathLength(0,63) = %d, %v; want 6", l, err)
	}
	if l, _ := bmin.PathLength(0, 1); l != 2 {
		t.Errorf("PathLength(0,1) = %d, want 2", l)
	}
	tmin, _ := NewNetwork(NetworkConfig{Kind: TMIN})
	if n, _ := tmin.PathCount(0, 63); n != 1 {
		t.Errorf("TMIN PathCount = %d, want 1", n)
	}
	if l, _ := tmin.PathLength(5, 6); l != 4 {
		t.Errorf("TMIN PathLength = %d, want 4", l)
	}
	if _, err := tmin.PathCount(3, 3); err == nil {
		t.Error("self path accepted")
	}
	if _, err := tmin.PathLength(0, 64); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := tmin.PathCount(-1, 5); err == nil {
		t.Error("negative node accepted")
	}
}

func TestFirstDifferenceFacade(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Kind: BMIN, K: 2, Stages: 3})
	if tt, ok := net.FirstDifference(1, 5); !ok || tt != 2 {
		t.Errorf("FirstDifference(001, 101) = %d, %v", tt, ok)
	}
	if _, ok := net.FirstDifference(4, 4); ok {
		t.Error("equal addresses should report ok = false")
	}
}

func TestAnalyzeClusters(t *testing.T) {
	cube, _ := NewNetwork(NetworkConfig{Kind: TMIN, Wiring: Cube})
	butterfly, _ := NewNetwork(NetworkConfig{Kind: TMIN, Wiring: Butterfly})
	var topDigit [][]int
	for v := 0; v < 4; v++ {
		var c []int
		for n := v * 16; n < (v+1)*16; n++ {
			c = append(c, n)
		}
		topDigit = append(topDigit, c)
	}
	if v := cube.AnalyzeClusters(topDigit); !v.Balanced || v.SharedChannels {
		t.Errorf("cube top-digit clustering: %+v, want balanced and unshared", v)
	}
	if v := butterfly.AnalyzeClusters(topDigit); !v.Reduced {
		t.Errorf("butterfly top-digit clustering: %+v, want reduced", v)
	}
}

func TestFatTreeLevels(t *testing.T) {
	bmin, _ := NewNetwork(NetworkConfig{Kind: BMIN})
	if l, err := bmin.FatTreeLevels(); err != nil || l != 3 {
		t.Errorf("FatTreeLevels = %d, %v", l, err)
	}
	tmin, _ := NewNetwork(NetworkConfig{Kind: TMIN})
	if _, err := tmin.FatTreeLevels(); err == nil {
		t.Error("TMIN accepted as fat tree")
	}
}

func TestDumps(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Kind: BMIN, K: 2, Stages: 2})
	if !strings.Contains(net.WiringDump(), "BMIN") {
		t.Error("WiringDump missing header")
	}
	if !strings.HasPrefix(net.DOT(), "digraph") {
		t.Error("DOT missing digraph")
	}
}

func TestWorkloadLengthDefaults(t *testing.T) {
	w := Workload{}
	if w.lengths().Mean() != 516 {
		t.Errorf("default mean length %v, want 516", w.lengths().Mean())
	}
	w = Workload{MinLen: 100, MaxLen: 50} // max < min clamps to min
	if w.lengths().Mean() != 100 {
		t.Errorf("clamped mean %v, want 100", w.lengths().Mean())
	}
	w = Workload{MaxLen: 64}
	if got := w.lengths().Mean(); got != 32.5 {
		t.Errorf("min defaulted mean %v, want 32.5", got)
	}
}

func TestHotSpotWorkloadRuns(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Kind: DMIN})
	res, err := Run(RunConfig{
		Network:       net,
		Workload:      Workload{Pattern: HotSpot, HotX: 0.10, MinLen: 16, MaxLen: 64},
		Load:          0.2,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesMeasured == 0 {
		t.Error("hot spot run measured nothing")
	}
}

func TestPermutationWorkloadRuns(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Kind: BMIN})
	res, err := Run(RunConfig{
		Network:       net,
		Workload:      Workload{Pattern: ShufflePerm, MinLen: 16, MaxLen: 64},
		Load:          0.3,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
		Seed:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesMeasured == 0 {
		t.Error("permutation run measured nothing")
	}
	// Butterfly permutation with ratios through the facade.
	net2, _ := NewNetwork(NetworkConfig{Kind: TMIN})
	if _, err := Run(RunConfig{
		Network:       net2,
		Workload:      Workload{Pattern: ButterflyPerm, ButterflyI: 2, MinLen: 8, MaxLen: 32},
		Load:          0.1,
		WarmupCycles:  1000,
		MeasureCycles: 4000,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherFacade(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Kind: BMIN})
	sources := []int{1, 2, 3, 16, 32}
	res, err := net.Gather(BinomialTree, 0, sources, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unicasts != len(sources) || res.LatencyCycles <= 64 {
		t.Errorf("gather result %+v", res)
	}
	if _, err := net.Gather(MulticastAlgorithm(9), 0, sources, 64); err == nil {
		t.Error("bad algorithm accepted")
	}
}

func TestMulticastFacade(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Kind: BMIN})
	dests := []int{1, 2, 3, 8, 16, 32, 48}
	var latencies []int64
	for _, alg := range []MulticastAlgorithm{SeparateAddressing, BinomialTree, SubtreeTree} {
		res, err := net.Multicast(alg, 0, dests, 128)
		if err != nil {
			t.Fatal(err)
		}
		if res.Unicasts != len(dests) {
			t.Errorf("%s: %d unicasts", res.Algorithm, res.Unicasts)
		}
		if res.LatencyCycles <= 128 {
			t.Errorf("%s: latency %d too fast", res.Algorithm, res.LatencyCycles)
		}
		latencies = append(latencies, res.LatencyCycles)
	}
	// The trees beat separate addressing for 7 destinations.
	if latencies[1] >= latencies[0] || latencies[2] >= latencies[0] {
		t.Errorf("tree multicast should beat separate addressing: %v", latencies)
	}
	if _, err := net.Multicast(MulticastAlgorithm(9), 0, dests, 128); err == nil {
		t.Error("bad algorithm accepted")
	}
	if _, err := net.Multicast(BinomialTree, 0, nil, 128); err == nil {
		t.Error("empty destination set accepted")
	}
}

func TestClusterRatioWorkload(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Kind: TMIN})
	res, err := Run(RunConfig{
		Network: net,
		Workload: Workload{
			Pattern: Uniform, Scope: Cluster16,
			Ratios: []float64{4, 1, 1, 1},
			MinLen: 16, MaxLen: 64,
		},
		Load:          0.2,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesMeasured == 0 {
		t.Error("ratio run measured nothing")
	}
	// Wrong ratio count errors.
	if _, err := Run(RunConfig{
		Network:       net,
		Workload:      Workload{Pattern: Uniform, Scope: Cluster16, Ratios: []float64{1, 2}},
		Load:          0.2,
		WarmupCycles:  1,
		MeasureCycles: 1,
	}); err == nil {
		t.Error("ratio count mismatch accepted")
	}
}
