package minsim

import (
	"fmt"

	"minsim/internal/multicast"
)

// MulticastAlgorithm selects a software-multicast tree builder
// (the paper's future-work item on multicast support; see the
// internal/multicast package for the constructions).
type MulticastAlgorithm int

// Available multicast algorithms.
const (
	// SeparateAddressing unicasts from the root to every destination;
	// the one-port architecture serializes the sends.
	SeparateAddressing MulticastAlgorithm = iota
	// BinomialTree forwards by recursive doubling over the given
	// destination order.
	BinomialTree
	// SubtreeTree is the dimension-ordered (U-min style) binomial
	// tree over sorted addresses, whose rounds ride disjoint subtrees
	// on a BMIN.
	SubtreeTree
)

// MulticastResult reports one simulated multicast.
type MulticastResult struct {
	Algorithm string
	// LatencyCycles is the cycle at which the last destination held
	// the complete message, starting from an idle network at cycle 0.
	LatencyCycles int64
	Unicasts      int
	Rounds        int // forwarding tree depth
}

// Multicast simulates delivering an L-flit message from root to every
// destination over an otherwise idle network using software
// (unicast-based) multicast.
func (n *Network) Multicast(alg MulticastAlgorithm, root int, dests []int, msgLen int) (MulticastResult, error) {
	var a multicast.Algorithm
	switch alg {
	case SeparateAddressing:
		a = multicast.SeparateAddressing{}
	case BinomialTree:
		a = multicast.Binomial{}
	case SubtreeTree:
		a = multicast.SubtreeAware{}
	default:
		return MulticastResult{}, fmt.Errorf("minsim: unknown multicast algorithm %d", int(alg))
	}
	res, err := multicast.Run(n.topo, a, root, dests, msgLen)
	if err != nil {
		return MulticastResult{}, err
	}
	return MulticastResult{
		Algorithm:     res.Algorithm,
		LatencyCycles: res.Latency,
		Unicasts:      res.Unicasts,
		Rounds:        res.MaxDepth,
	}, nil
}

// Gather simulates the dual collective — a fixed-size reduction of
// the sources' L-flit contributions into root over the same tree
// shapes (a node forwards upward once all of its children arrived).
func (n *Network) Gather(alg MulticastAlgorithm, root int, sources []int, msgLen int) (MulticastResult, error) {
	var a multicast.Algorithm
	switch alg {
	case SeparateAddressing:
		a = multicast.SeparateAddressing{}
	case BinomialTree:
		a = multicast.Binomial{}
	case SubtreeTree:
		a = multicast.SubtreeAware{}
	default:
		return MulticastResult{}, fmt.Errorf("minsim: unknown multicast algorithm %d", int(alg))
	}
	res, err := multicast.Gather(n.topo, a, root, sources, msgLen)
	if err != nil {
		return MulticastResult{}, err
	}
	return MulticastResult{
		Algorithm:     res.Algorithm,
		LatencyCycles: res.Latency,
		Unicasts:      res.Unicasts,
		Rounds:        res.MaxDepth,
	}, nil
}
