package minsim

import (
	"fmt"

	"minsim/internal/engine"
	"minsim/internal/metrics"
	"minsim/internal/trace"
)

// Observation carries the optional deep instrumentation of a run:
// the latency distribution, per-layer channel utilization, batch-means
// confidence interval, and a per-message trace.
type Observation struct {
	LatencyP50, LatencyP95, LatencyP99 float64 // cycles
	HistogramText                      string  // rendered latency histogram
	UtilizationText                    string  // per-layer channel utilization
	TraceCSV                           string  // one row per delivered message
	// CILow/CIHigh bound the 95% batch-means confidence interval for
	// the mean latency; CIOK reports whether enough batches completed.
	CILow, CIHigh float64
	CIOK          bool
}

// ObserveOptions selects which instruments to enable. Tracing keeps a
// record per message; leave it off for long runs.
type ObserveOptions struct {
	Histogram   bool
	Utilization bool
	Trace       bool
	// BatchCycles enables batch-means confidence intervals with the
	// given batch length (0 disables; try MeasureCycles/20).
	BatchCycles int64
}

// RunObserved is Run with instrumentation attached.
func RunObserved(cfg RunConfig, opts ObserveOptions) (Result, Observation, error) {
	if cfg.Network == nil {
		return Result{}, Observation{}, fmt.Errorf("minsim: nil network")
	}
	if cfg.WarmupCycles == 0 {
		cfg.WarmupCycles = 20_000
	}
	if cfg.MeasureCycles == 0 {
		cfg.MeasureCycles = 60_000
	}
	src, err := cfg.Workload.source(cfg.Network.topo, cfg.Load, cfg.Seed^0x5bf03635)
	if err != nil {
		return Result{}, Observation{}, err
	}
	var rec trace.Recorder
	ecfg := engine.Config{
		Net:        cfg.Network.topo,
		Router:     cfg.Network.router,
		Source:     src,
		Seed:       cfg.Seed,
		QueueLimit: cfg.QueueLimit,
	}
	if opts.Trace {
		ecfg.OnDeliver = rec.OnDeliver
	}
	e, err := engine.New(ecfg)
	if err != nil {
		return Result{}, Observation{}, err
	}
	var hist engine.Histogram
	if opts.Histogram {
		e.EnableLatencyHistogram(&hist)
	}
	if opts.Utilization {
		e.EnableChannelStats()
	}
	if opts.BatchCycles > 0 {
		e.EnableBatchMeans(opts.BatchCycles)
	}
	e.SetMeasureFrom(cfg.WarmupCycles)
	e.Run(cfg.WarmupCycles + cfg.MeasureCycles)

	st := e.Stats()
	p := metrics.FromStats(cfg.Load, cfg.Network.topo.Nodes, st)
	res := Result{
		Offered:           p.Offered,
		OfferedMeasured:   p.OfferedMeasured,
		Throughput:        p.Throughput,
		MeanLatencyCycles: p.LatencyCyc,
		MeanLatencyMs:     p.LatencyMs,
		LatencyStdDev:     p.StdDev,
		MessagesMeasured:  p.Messages,
		MaxSourceQueue:    st.MaxQueue,
		Sustainable:       p.Sustainable,
	}
	var obs Observation
	if opts.Histogram && hist.Count() > 0 {
		obs.LatencyP50 = hist.Quantile(0.5)
		obs.LatencyP95 = hist.Quantile(0.95)
		obs.LatencyP99 = hist.Quantile(0.99)
		obs.HistogramText = hist.String()
	}
	if opts.Utilization {
		obs.UtilizationText = trace.UtilizationReport(cfg.Network.topo, e.ChannelFlits(), st.Cycles) +
			trace.BlockingReport(e.BlockedByStage(), st.Cycles)
	}
	if opts.Trace {
		obs.TraceCSV = rec.CSV()
	}
	if opts.BatchCycles > 0 {
		obs.CILow, obs.CIHigh, obs.CIOK = metrics.ConfidenceInterval(e.BatchMeans(), 1.96)
	}
	return res, obs, nil
}
