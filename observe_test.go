package minsim

import (
	"strings"
	"testing"
)

func TestRunObserved(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Kind: TMIN})
	if err != nil {
		t.Fatal(err)
	}
	res, obs, err := RunObserved(RunConfig{
		Network:       net,
		Workload:      Workload{Pattern: Uniform, MinLen: 16, MaxLen: 64},
		Load:          0.2,
		WarmupCycles:  2000,
		MeasureCycles: 12000,
		Seed:          3,
	}, ObserveOptions{Histogram: true, Utilization: true, Trace: true, BatchCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesMeasured == 0 {
		t.Fatal("no messages measured")
	}
	if obs.LatencyP50 <= 0 || obs.LatencyP95 < obs.LatencyP50 || obs.LatencyP99 < obs.LatencyP95 {
		t.Errorf("quantiles disordered: %v %v %v", obs.LatencyP50, obs.LatencyP95, obs.LatencyP99)
	}
	if !strings.Contains(obs.HistogramText, "histogram:") {
		t.Error("missing histogram text")
	}
	if !strings.Contains(obs.UtilizationText, "C0") {
		t.Error("missing utilization text")
	}
	if !strings.HasPrefix(obs.TraceCSV, "src,dst,") {
		t.Error("missing trace CSV")
	}
	if !obs.CIOK {
		t.Error("expected a batch-means confidence interval")
	}
	if !(obs.CILow <= res.MeanLatencyCycles+1 && res.MeanLatencyCycles-1 <= obs.CIHigh) {
		// The CI is over batch means, so it should bracket something
		// near the overall mean.
		t.Errorf("CI [%v, %v] far from mean %v", obs.CILow, obs.CIHigh, res.MeanLatencyCycles)
	}
}

func TestRunObservedMinimal(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Kind: BMIN})
	res, obs, err := RunObserved(RunConfig{
		Network:       net,
		Workload:      Workload{MinLen: 8, MaxLen: 16},
		Load:          0.1,
		WarmupCycles:  500,
		MeasureCycles: 3000,
	}, ObserveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesMeasured == 0 {
		t.Error("nothing measured")
	}
	if obs.HistogramText != "" || obs.TraceCSV != "" || obs.UtilizationText != "" || obs.CIOK {
		t.Error("disabled instruments produced output")
	}
	if _, _, err := RunObserved(RunConfig{}, ObserveOptions{}); err == nil {
		t.Error("nil network accepted")
	}
}

func TestFacadeOmegaBaseline(t *testing.T) {
	for _, w := range []Wiring{Omega, Baseline} {
		net, err := NewNetwork(NetworkConfig{Kind: TMIN, Wiring: w})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(RunConfig{
			Network:       net,
			Workload:      Workload{MinLen: 8, MaxLen: 32},
			Load:          0.15,
			WarmupCycles:  1000,
			MeasureCycles: 5000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.MessagesMeasured == 0 {
			t.Errorf("wiring %d measured nothing", w)
		}
	}
}

func TestFacadeFaultsAndDepth(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{Kind: DMIN})
	// Pick an interstage channel to fail via the topology.
	victim := -1
	topo := net.Topology()
	for i := range topo.Channels {
		if topo.Channels[i].Layer == 1 {
			victim = i
			break
		}
	}
	if !net.Reachable([]int{victim}, 0, 63) {
		t.Error("DMIN should route around one interstage fault")
	}
	res, err := Run(RunConfig{
		Network:        net,
		Workload:       Workload{MinLen: 8, MaxLen: 32},
		Load:           0.15,
		WarmupCycles:   1000,
		MeasureCycles:  6000,
		BufferDepth:    2,
		FailedChannels: []int{victim},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesMeasured == 0 {
		t.Error("faulted run measured nothing")
	}
}

func TestCriticalChannelCount(t *testing.T) {
	tminNet, _ := NewNetwork(NetworkConfig{Kind: TMIN, K: 2, Stages: 3})
	// Every channel of a TMIN is critical: 8 nodes * 2 edges + 2
	// interstage layers * 8 = 32 channels.
	if got := tminNet.CriticalChannelCount(); got != tminNet.Channels() {
		t.Errorf("TMIN critical channels %d, want all %d", got, tminNet.Channels())
	}
	dminNet, _ := NewNetwork(NetworkConfig{Kind: DMIN, K: 2, Stages: 3})
	// Only the 16 node links are critical.
	if got := dminNet.CriticalChannelCount(); got != 16 {
		t.Errorf("DMIN critical channels %d, want 16", got)
	}
}
