#!/usr/bin/env bash
# End-to-end gate for the distributed fleet, run by the CI job
# fleet-e2e and runnable locally (./scripts/fleet_e2e.sh). It boots
# the real simfleet coordinator plus two real simd workers and proves
# the three distribution properties the fleet promises:
#
#   1. a cold panel is sharded across the fleet: both workers execute
#      at least one point, no key executes twice (executed == unique,
#      zero duplicate executions),
#   2. kill -9 of a worker holding a lease mid-job requeues the lease
#      after its TTL and the surviving worker completes the job,
#   3. a warm rerun of the cold panel executes 0 points fleet-wide —
#      the shared content-addressed store answers everything.
#
# On failure, logs are copied to $E2E_ARTIFACT_DIR (if set) so CI can
# upload them as artifacts.
set -euo pipefail
cd "$(dirname "$0")/.."

COORD_PORT="${SIMFLEET_PORT:-18090}"
W1_PORT=$((COORD_PORT + 1))
W2_PORT=$((COORD_PORT + 2))
COORD="http://127.0.0.1:$COORD_PORT"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  rc=$?
  if [ "$rc" -ne 0 ] && [ -n "${E2E_ARTIFACT_DIR:-}" ]; then
    mkdir -p "$E2E_ARTIFACT_DIR"
    cp "$WORK"/*.log "$E2E_ARTIFACT_DIR"/ 2>/dev/null || true
  fi
  for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

# metric <base-url> <series> prints the current value of one
# Prometheus series (label set included in the name, e.g.
# 'fleet_worker_points_executed_total{worker="w1"}').
metric() {
  curl -fsS "$1/metrics" | awk -v pat="$2" '$1 == pat {print $2}'
}

# wait_for <desc> <cmd...> polls cmd (an exit-status predicate) for up
# to 30s.
wait_for() {
  local desc=$1; shift
  for _ in $(seq 1 300); do
    if "$@" > /dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "timeout waiting for: $desc"
  return 1
}

echo "== build"
go build -o "$WORK/simfleet" ./cmd/simfleet
go build -o "$WORK/simd" ./cmd/simd

echo "== boot coordinator + 2 workers"
"$WORK/simfleet" -addr "127.0.0.1:$COORD_PORT" -cache "$WORK/cache" \
  -chunk 2 -lease-ttl 3s 2> "$WORK/simfleet.log" &
PIDS+=($!)
disown
wait_for "coordinator healthz" curl -fsS "$COORD/healthz"

"$WORK/simd" -addr "127.0.0.1:$W1_PORT" -cache "$WORK/w1cache" \
  -coordinator "$COORD" -worker-name w1 2> "$WORK/w1.log" &
W1_PID=$!
PIDS+=($W1_PID)
disown
"$WORK/simd" -addr "127.0.0.1:$W2_PORT" -cache "$WORK/w2cache" \
  -coordinator "$COORD" -worker-name w2 2> "$WORK/w2.log" &
W2_PID=$!
PIDS+=($W2_PID)
disown

registered() { [ "$(metric "$COORD" fleet_workers_registered)" = 2 ]; }
wait_for "both workers registered" registered

# 8 points heavy enough (~0.5M cycles each) that chunk-2 leases take
# long enough for both pollers to grab work.
PANEL='{"experiments":[{"id":"panel","loads":[0.05,0.1,0.15,0.2,0.25,0.3,0.35,0.4],"curves":[{"label":"tmin","network":{"kind":"tmin","k":4,"stages":2},"workload":{"pattern":"uniform"}}]}],"budget":{"warmup":200,"measure":500000}}'

echo "== cold panel: sharded across the fleet"
cold=$(curl -fsS -X POST "$COORD/v1/run" -d "$PANEL")
echo "$cold" | grep -o '"counters":{[^}]*}'
echo "$cold" | grep -q '"status":"done"' || { echo "cold run not done"; exit 1; }
unique=$(echo "$cold" | sed -n 's/.*"unique":\([0-9]*\).*/\1/p')
executed=$(echo "$cold" | sed -n 's/.*"executed":\([0-9]*\).*/\1/p')
[ "$executed" = "$unique" ] && [ "$executed" -gt 0 ] \
  || { echo "cold run executed $executed of $unique unique points"; exit 1; }

w1_exec=$(metric "$COORD" 'fleet_worker_points_executed_total{worker="w1"}')
w2_exec=$(metric "$COORD" 'fleet_worker_points_executed_total{worker="w2"}')
dups=$(metric "$COORD" fleet_duplicate_executions_total)
echo "w1 executed $w1_exec, w2 executed $w2_exec, duplicates $dups"
[ "${w1_exec:-0}" -gt 0 ] || { echo "worker w1 executed nothing"; exit 1; }
[ "${w2_exec:-0}" -gt 0 ] || { echo "worker w2 executed nothing"; exit 1; }
[ "$dups" = 0 ] || { echo "cold run recorded $dups duplicate executions"; exit 1; }
[ "$((w1_exec + w2_exec))" = "$unique" ] \
  || { echo "per-worker executed ($w1_exec + $w2_exec) != $unique unique: a key ran twice"; exit 1; }

echo "== worker-side metrics surface"
curl -fsS "http://127.0.0.1:$W1_PORT/metrics" | grep -q '^simd_worker_points_executed_total' \
  || { echo "w1 missing fleet worker metrics"; exit 1; }

# Slow job: 6 fresh points at 8M cycles each, so a chunk-2 lease stays
# outstanding for seconds — long enough to observe and kill its holder.
SLOW='{"experiments":[{"id":"slow","loads":[0.41,0.42,0.43,0.44,0.45,0.46],"curves":[{"label":"tmin","network":{"kind":"tmin","k":4,"stages":2},"workload":{"pattern":"uniform"}}]}],"budget":{"warmup":200,"measure":8000000}}'

echo "== kill -9 a leased worker mid-job"
slow_id=$(curl -fsS -X POST "$COORD/v1/jobs" -d "$SLOW" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
victim=""
for _ in $(seq 1 300); do
  if [ "$(metric "$COORD" 'fleet_worker_active_leases{worker="w1"}')" -ge 1 ] 2>/dev/null; then
    victim=w1; victim_pid=$W1_PID; break
  fi
  if [ "$(metric "$COORD" 'fleet_worker_active_leases{worker="w2"}')" -ge 1 ] 2>/dev/null; then
    victim=w2; victim_pid=$W2_PID; break
  fi
  sleep 0.05
done
[ -n "$victim" ] || { echo "no worker ever held a lease for the slow job"; exit 1; }
echo "killing $victim (pid $victim_pid) holding a live lease"
kill -9 "$victim_pid"

slow_done() { curl -fsS "$COORD/v1/jobs/$slow_id" | grep -q '"status":"done"'; }
wait_for "slow job completion after worker loss" slow_done
curl -fsS "$COORD/v1/jobs/$slow_id" | grep -o '"counters":{[^}]*}'
expired=$(metric "$COORD" fleet_leases_expired_total)
requeued=$(metric "$COORD" fleet_units_requeued_total)
echo "leases expired $expired, units requeued $requeued"
[ "$expired" -ge 1 ] || { echo "the killed worker's lease never expired"; exit 1; }
[ "$requeued" -ge 1 ] || { echo "no units were requeued after worker loss"; exit 1; }

echo "== warm rerun: 0 executed fleet-wide"
warm=$(curl -fsS -X POST "$COORD/v1/run" -d "$PANEL")
echo "$warm" | grep -o '"counters":{[^}]*}'
echo "$warm" | grep -q '"executed":0' || { echo "warm rerun re-executed points"; exit 1; }

echo "== coordinator fleet metrics surface"
for m in fleet_units_completed_total fleet_leases_granted_total fleet_store_puts_total; do
  [ "$(metric "$COORD" "$m")" -ge 1 ] || { echo "metric $m missing or zero"; exit 1; }
done

echo "fleet-e2e: all checks passed"
