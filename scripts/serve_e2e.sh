#!/usr/bin/env bash
# End-to-end gate for the simd simulation service, run by the CI job
# serve-e2e and runnable locally (./scripts/serve_e2e.sh). It proves
# the four hardening properties the service promises:
#
#   1. a quick figure panel served over HTTP,
#   2. the warm repeat of the same request executes 0 simulations
#      (content-addressed cache shared across requests),
#   3. a saturated bounded queue answers 429 with a Retry-After hint,
#   4. SIGTERM drains in-flight jobs and exits 0.
#
# On failure, logs are copied to $E2E_ARTIFACT_DIR (if set) so CI can
# upload them as artifacts.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SIMD_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
SIMD_PID=""
cleanup() {
  rc=$?
  if [ "$rc" -ne 0 ] && [ -n "${E2E_ARTIFACT_DIR:-}" ]; then
    mkdir -p "$E2E_ARTIFACT_DIR"
    cp "$WORK"/*.log "$E2E_ARTIFACT_DIR"/ 2>/dev/null || true
  fi
  [ -n "$SIMD_PID" ] && kill -9 "$SIMD_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/simd" ./cmd/simd

echo "== boot"
"$WORK/simd" -addr "127.0.0.1:$PORT" -cache "$WORK/cache" \
  -queue 1 -job-workers 1 -drain-timeout 2s 2> "$WORK/simd.log" &
SIMD_PID=$!
for _ in $(seq 1 100); do
  curl -fsS "$BASE/healthz" > /dev/null 2>&1 && break
  if ! kill -0 "$SIMD_PID" 2>/dev/null; then
    echo "simd died during boot"; cat "$WORK/simd.log"; exit 1
  fi
  sleep 0.1
done
curl -fsS "$BASE/healthz"

PANEL='{"figures":["fig16a"],"budget":{"preset":"quick"}}'

echo "== cold run"
cold=$(curl -fsS -X POST "$BASE/v1/run" -d "$PANEL")
echo "$cold" | grep -o '"counters":{[^}]*}'
echo "$cold" | grep -q '"status":"done"' || { echo "cold run not done"; exit 1; }
echo "$cold" | grep -q '"executed":[1-9]' || { echo "cold run executed nothing"; exit 1; }

echo "== warm run (must execute 0 points)"
warm=$(curl -fsS -X POST "$BASE/v1/run" -d "$PANEL")
echo "$warm" | grep -o '"counters":{[^}]*}'
echo "$warm" | grep -q '"executed":0' || { echo "warm run re-executed points"; exit 1; }

# A replicated panel (replicas > 1) must flow end to end: the cold run
# executes only the non-replica-0 points (replica 0 shares the plain
# panel's cache entries, which the quick run above already wrote), the
# points carry replica counts, and the warm repeat is fully cached.
RPANEL='{"figures":["fig16a"],"budget":{"preset":"quick","replicas":2}}'

echo "== replicated cold run (replica 0 cached, replica 1 executes)"
rcold=$(curl -fsS -X POST "$BASE/v1/run" -d "$RPANEL")
echo "$rcold" | grep -o '"counters":{[^}]*}'
echo "$rcold" | grep -q '"status":"done"' || { echo "replicated run not done"; exit 1; }
echo "$rcold" | grep -q '"executed":[1-9]' || { echo "replicated run executed nothing"; exit 1; }
echo "$rcold" | grep -q '"cached":[1-9]' || { echo "replicated run reused no replica-0 entries"; exit 1; }
echo "$rcold" | grep -q '"Replicas":2' || { echo "replicated points lack replica counts"; exit 1; }

echo "== replicated warm run (must execute 0 points)"
rwarm=$(curl -fsS -X POST "$BASE/v1/run" -d "$RPANEL")
echo "$rwarm" | grep -o '"counters":{[^}]*}'
echo "$rwarm" | grep -q '"executed":0' || { echo "replicated warm run re-executed points"; exit 1; }

# A bursty MMPP panel proves the arrival axis flows through the wire
# schema end to end: the cold run simulates, the warm repeat is served
# entirely from the cache (arrival parameters are part of the content
# key).
MMPP='{"experiments":[{"id":"mmpp-panel","loads":[0.1,0.2],"curves":[{"label":"tmin-mmpp","network":{"kind":"tmin","k":4,"stages":2},"workload":{"pattern":"uniform","arrival":"mmpp","burst":8,"dwellhi":200,"dwelllo":800}}]}],"budget":{"preset":"quick"}}'

echo "== bursty MMPP cold run"
mcold=$(curl -fsS -X POST "$BASE/v1/run" -d "$MMPP")
echo "$mcold" | grep -o '"counters":{[^}]*}'
echo "$mcold" | grep -q '"status":"done"' || { echo "mmpp run not done"; exit 1; }
echo "$mcold" | grep -q '"executed":[1-9]' || { echo "mmpp run executed nothing"; exit 1; }

echo "== bursty MMPP warm run (must execute 0 points)"
mwarm=$(curl -fsS -X POST "$BASE/v1/run" -d "$MMPP")
echo "$mwarm" | grep -o '"counters":{[^}]*}'
echo "$mwarm" | grep -q '"executed":0' || { echo "mmpp warm run re-executed points"; exit 1; }

# A slow job (3M cycles/point on a small net) pins the single worker
# so the depth-1 queue can be saturated deterministically.
SLOW='{"experiments":[{"id":"slow","loads":[0.1,0.2],"curves":[{"label":"t","network":{"kind":"tmin","k":4,"stages":2},"workload":{"pattern":"uniform"}}]}],"budget":{"warmup":200,"measure":3000000}}'

echo "== saturate the queue (expect 429 + Retry-After)"
slow_id=$(curl -fsS -X POST "$BASE/v1/jobs" -d "$SLOW" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
for _ in $(seq 1 100); do
  curl -fsS "$BASE/v1/jobs/$slow_id" | grep -q '"status":"running"' && break
  sleep 0.1
done
curl -fsS -X POST "$BASE/v1/jobs" -d "$SLOW" > /dev/null # fills the depth-1 queue
headers=$(curl -s -D - -o /dev/null -X POST "$BASE/v1/jobs" -d "$SLOW")
echo "$headers" | head -1
echo "$headers" | grep -q ' 429' || { echo "saturated queue did not return 429"; exit 1; }
echo "$headers" | grep -qi '^retry-after:' || { echo "429 lacked Retry-After"; exit 1; }

echo "== metrics surface"
metrics=$(curl -fsS "$BASE/metrics")
echo "$metrics" | grep -q '^simd_jobs_total{status="rejected"} 1$' \
  || { echo "rejected counter wrong"; echo "$metrics"; exit 1; }
echo "$metrics" | grep -q '^simd_points_cached_total' || { echo "missing cache metrics"; exit 1; }
echo "$metrics" | grep -q '^simd_queue_depth' || { echo "missing queue metrics"; exit 1; }

echo "== SIGTERM drains and exits 0"
kill -TERM "$SIMD_PID"
rc=0
wait "$SIMD_PID" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "simd exited $rc after SIGTERM"; cat "$WORK/simd.log"; exit 1
fi
SIMD_PID=""

echo "== request log is structured JSON"
grep -q '"method":"POST","path":"/v1/run","status":200' "$WORK/simd.log" \
  || { echo "missing structured request log"; cat "$WORK/simd.log"; exit 1; }

echo "serve-e2e: all checks passed"
