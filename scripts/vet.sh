#!/usr/bin/env bash
# One-command local mirror of the CI static-analysis gates, runnable
# without make: the repo's own simvet suite (all eight analyzers plus
# the wire.lock regeneration no-op check), then the pinned third-party
# linters from the lint job — staticcheck's SA class and govulncheck.
# The pins below MUST match .github/workflows/ci.yml; bump both
# together. The third-party tools need network to install, so when
# `go install` cannot fetch them (offline sandbox) those steps are
# skipped with a warning instead of failing the run — simvet itself is
# stdlib-only and always runs.
set -euo pipefail
cd "$(dirname "$0")/.."

STATICCHECK_VERSION="2025.1.1"
GOVULNCHECK_VERSION="v1.1.4"

echo "== go vet"
go vet ./...

echo "== simvet (all analyzers)"
go run ./cmd/simvet ./...

echo "== wire.lock regeneration is a no-op"
go run ./cmd/simvet -writewire
git diff --exit-code docs/wire.lock

GOBIN="$(mktemp -d)"
export GOBIN
trap 'rm -rf "$GOBIN"' EXIT

echo "== staticcheck @$STATICCHECK_VERSION (SA class)"
if go install "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" 2>/dev/null; then
  "$GOBIN/staticcheck" -checks 'SA*' ./...
else
  echo "WARN: could not install staticcheck (offline?); skipped" >&2
fi

echo "== govulncheck @$GOVULNCHECK_VERSION"
if go install "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION" 2>/dev/null; then
  "$GOBIN/govulncheck" ./...
else
  echo "WARN: could not install govulncheck (offline?); skipped" >&2
fi

echo "== vet.sh clean"
